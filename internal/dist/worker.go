package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"bgpsim/internal/churn"
	"bgpsim/internal/core"
	"bgpsim/internal/experiment"
)

// JobRunner executes one sweep trial job and returns its result as a
// one-entry slice. The default is RegistryRunner; tests and benchmarks
// inject no-op runners.
type JobRunner func(ctx context.Context, desc SweepDesc, job Job) ([]experiment.Result, error)

// ChurnJobRunner executes one churn trial job, invoking obs as each
// measurement window closes. The default is ChurnRunner.
type ChurnJobRunner func(ctx context.Context, desc ChurnDesc, job Job, obs churn.WindowObserver) (*churn.TrialResult, error)

// Worker is the client half of the protocol: it polls the coordinator
// for leases, executes jobs, and submits results, retrying transient
// HTTP failures with exponential backoff. Configure the exported fields
// before calling Run; the zero value of every optional field selects a
// sensible default.
type Worker struct {
	// Base is the coordinator's base URL ("http://host:port").
	Base string
	// ID names this worker in leases and logs (default "host-pid").
	ID string
	// Client is the HTTP client (default: http.DefaultClient semantics
	// with a 30s request timeout).
	Client *http.Client
	// Backoff shapes transient-error retries (zero value = defaults).
	Backoff Backoff
	// MaxAttempts bounds consecutive failed tries of one request before
	// the worker gives up on the coordinator (default 8 — with default
	// backoff roughly 25s of retrying).
	MaxAttempts int
	// PollInterval is the idle delay after a StatusWait response
	// (default 200ms).
	PollInterval time.Duration
	// SimWorkers is the intra-simulation parallelism handed to job
	// execution (0 = GOMAXPROCS).
	SimWorkers int
	// Run executes sweep trial jobs (nil = RegistryRunner(SimWorkers)).
	Runner JobRunner
	// ChurnRun executes churn trial jobs (nil = ChurnRunner()).
	ChurnRun ChurnJobRunner
	// Log receives per-job progress lines. nil discards.
	Log *log.Logger

	// sleep waits between retries/polls; tests inject instant fakes.
	sleep func(ctx context.Context, d time.Duration) error

	// draining is set by Drain: finish and submit the in-flight trial,
	// then exit instead of leasing more work.
	draining atomic.Bool
}

// Drain asks the worker to stop gracefully: the in-flight trial (if
// any) runs to completion and its result is submitted, then Work
// returns nil instead of leasing another job. Safe to call from any
// goroutine (typically a SIGTERM handler).
func (w *Worker) Drain() { w.draining.Store(true) }

// errUnreachable marks retry-budget exhaustion talking to the
// coordinator.
var errUnreachable = errors.New("dist: coordinator unreachable")

// BaseURL normalizes a coordinator address for Worker.Base: a bare
// host:port gains an http:// scheme, full URLs pass through.
func BaseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// Work runs the worker loop until the coordinator shuts down or
// disappears: lease, execute, complete, repeat. A coordinator that
// becomes unreachable after at least one successful exchange is treated
// as a normal end of work (it exits when its figures are done) and Work
// returns nil; a coordinator that was never reachable is an error. Job
// execution errors are reported to the coordinator (which fails the
// run) and end the loop with the error.
func (w *Worker) Work(ctx context.Context) error {
	w.applyDefaults()
	runner := w.Runner
	if runner == nil {
		runner = RegistryRunner(w.SimWorkers)
	}
	churnRunner := w.ChurnRun
	if churnRunner == nil {
		churnRunner = ChurnRunner(w.SimWorkers)
	}
	everConnected := false
	jobs := 0
	for {
		if w.draining.Load() {
			w.Log.Printf("dist: worker %s: drained after %d jobs; exiting", w.ID, jobs)
			return nil
		}
		var lease LeaseResponse
		err := w.post(ctx, "/v1/lease", LeaseRequest{Worker: w.ID}, &lease)
		switch {
		case errors.Is(err, errUnreachable) && everConnected:
			w.Log.Printf("dist: worker %s: coordinator gone after %d jobs; exiting", w.ID, jobs)
			return nil
		case err != nil:
			return err
		}
		everConnected = true
		switch lease.Status {
		case StatusShutdown:
			w.Log.Printf("dist: worker %s: coordinator shut down after %d jobs; exiting", w.ID, jobs)
			return nil
		case StatusWait:
			if err := w.sleep(ctx, w.PollInterval); err != nil {
				return err
			}
		case StatusJob:
			complete := CompleteRequest{
				Worker:  w.ID,
				SweepID: lease.SweepID,
				JobID:   lease.Job.ID,
				Lease:   lease.Lease,
			}
			var jerr error
			var what string
			switch {
			case lease.Churn != nil:
				what = fmt.Sprintf("churn %s trial %d", lease.Churn.Scenario.Program.Kind, lease.Job.Trial)
				complete.TrialResult, jerr = churnRunner(ctx, *lease.Churn, lease.Job, w.windowObserver(lease))
			case lease.Desc != nil:
				what = fmt.Sprintf("%s series %d x %d trial %d",
					lease.Desc.Experiment, lease.Job.Series, lease.Job.X, lease.Job.Trial)
				complete.Results, jerr = runner(ctx, *lease.Desc, lease.Job)
			default:
				return fmt.Errorf("dist: lease for job %d without a run descriptor", lease.Job.ID)
			}
			if jerr != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				complete.Results, complete.TrialResult = nil, nil
				complete.Error = jerr.Error()
			}
			var ack CompleteResponse
			err := w.post(ctx, "/v1/complete", complete, &ack)
			switch {
			case errors.Is(err, errUnreachable):
				// The lease expires and another worker redoes the trial.
				w.Log.Printf("dist: worker %s: coordinator gone mid-submit; exiting", w.ID)
				return nil
			case err != nil:
				return err
			}
			if jerr != nil {
				return fmt.Errorf("dist: job %d (%s): %w", lease.Job.ID, what, jerr)
			}
			jobs++
			w.Log.Printf("dist: worker %s: job %d done (%s, %s)", w.ID, lease.Job.ID, what, ack.Status)
		default:
			return fmt.Errorf("dist: unknown lease status %q", lease.Status)
		}
	}
}

// windowObserver builds the per-window streaming callback for a leased
// churn job: each closed window posts one advisory WindowReport. The
// post is a single try with no retries — losing a report only stales
// the live view, never the authoritative completion payload — so a slow
// coordinator cannot stall the simulation for long.
func (w *Worker) windowObserver(lease LeaseResponse) churn.WindowObserver {
	return func(trial int, win churn.WindowResult, perNode []int) {
		rep := WindowReport{
			Worker:      w.ID,
			SweepID:     lease.SweepID,
			JobID:       lease.Job.ID,
			Trial:       trial,
			Window:      win,
			PerNodeSent: perNode,
		}
		payload, err := json.Marshal(rep)
		if err != nil {
			return
		}
		var ack CompleteResponse
		_ = w.tryPost(context.Background(), "/v1/window", payload, &ack)
	}
}

// applyDefaults fills zero-valued optional fields.
func (w *Worker) applyDefaults() {
	if w.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		w.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if w.Client == nil {
		w.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.MaxAttempts <= 0 {
		w.MaxAttempts = 8
	}
	if w.PollInterval <= 0 {
		w.PollInterval = 200 * time.Millisecond
	}
	if w.Log == nil {
		w.Log = log.New(io.Discard, "", 0)
	}
	if w.sleep == nil {
		w.sleep = sleepCtx
	}
}

// post sends one JSON request, retrying transient failures (network
// errors, 5xx) with backoff. Permanent failures (4xx, malformed
// responses) return immediately; exhausting the retry budget returns
// errUnreachable.
func (w *Worker) post(ctx context.Context, path string, reqBody, respBody any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("dist: marshal request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < w.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := w.sleep(ctx, w.Backoff.Delay(attempt-1)); err != nil {
				return err
			}
		}
		lastErr = w.tryPost(ctx, path, payload, respBody)
		if lastErr == nil {
			return nil
		}
		var p permanentError
		if errors.As(lastErr, &p) {
			return p.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.Log.Printf("dist: worker %s: %s attempt %d/%d: %v", w.ID, path, attempt+1, w.MaxAttempts, lastErr)
	}
	return fmt.Errorf("%w: %s: %v", errUnreachable, path, lastErr)
}

// permanentError wraps failures that retrying cannot fix.
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }

// tryPost performs one HTTP exchange.
func (w *Worker) tryPost(ctx context.Context, path string, payload []byte, respBody any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(w.Base, "/")+path, bytes.NewReader(payload))
	if err != nil {
		return permanentError{fmt.Errorf("dist: build request: %w", err)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.Client.Do(req)
	if err != nil {
		return err // transient: connection refused, timeout, ...
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return fmt.Errorf("dist: %s: %s", path, resp.Status)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return permanentError{fmt.Errorf("dist: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))}
	}
	if err := json.NewDecoder(resp.Body).Decode(respBody); err != nil {
		return permanentError{fmt.Errorf("dist: %s: decode response: %w", path, err)}
	}
	return nil
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// errJobDone aborts an experiment run once the target sweep's trial has
// executed; RegistryRunner's interceptor returns it from the Sweeper
// hook so Experiment.Run unwinds without running later sweeps.
var errJobDone = errors.New("dist: job complete")

// RegistryRunner returns the default sweep job executor: it
// reconstructs the job's sweep by re-running the experiment from the
// shared registry with a Sweeper hook that, at the descriptor's
// SweepIndex, executes exactly the requested trial through
// experiment.CellRunner and unwinds. Seeds derive from grid indices, so
// the produced trial result is bit-identical to what a local sweep
// computes for that trial. The returned runner keeps one simulator pool
// across jobs; simWorkers feeds opts.Workers for experiments that use
// intra-run parallelism (0 = GOMAXPROCS).
func RegistryRunner(simWorkers int) JobRunner {
	cells := experiment.NewCellRunner()
	return func(ctx context.Context, desc SweepDesc, job Job) ([]experiment.Result, error) {
		if desc.Protocol != ProtocolVersion {
			return nil, fmt.Errorf("dist: coordinator speaks %q, this worker %q", desc.Protocol, ProtocolVersion)
		}
		exp, err := core.Lookup(desc.Experiment)
		if err != nil {
			return nil, err
		}
		opts := desc.Options.Core()
		opts.Workers = simWorkers
		opts.Context = ctx
		var results []experiment.Result
		var cellErr error
		index := 0
		opts.Sweeper = func(cfg experiment.SweepConfig) (experiment.Figure, error) {
			i := index
			index++
			if i != desc.SweepIndex {
				// Not the target sweep: skip its execution entirely.
				// Current experiments never inspect a sweep's figure to
				// build the next one, so an empty figure is safe.
				return experiment.Figure{}, nil
			}
			cfg, err := experiment.NormalizeSweep(cfg)
			if err != nil {
				cellErr = err
				return experiment.Figure{}, errJobDone
			}
			got := Grid{Series: len(cfg.SeriesNames), Xs: len(cfg.Xs), Trials: cfg.Trials}
			if got != desc.Grid {
				cellErr = fmt.Errorf("dist: grid mismatch for %s sweep %d: coordinator %+v, worker %+v — binaries out of sync",
					desc.Experiment, desc.SweepIndex, desc.Grid, got)
				return experiment.Figure{}, errJobDone
			}
			var res experiment.Result
			res, cellErr = cells.RunTrial(ctx, cfg, job.Series, job.X, job.Trial)
			if cellErr == nil {
				results = []experiment.Result{res}
			}
			return experiment.Figure{}, errJobDone
		}
		_, err = exp.Run(opts)
		switch {
		case errors.Is(err, errJobDone):
			return results, cellErr
		case err != nil:
			return nil, err
		default:
			return nil, fmt.Errorf("dist: experiment %s ran %d sweeps, job addresses sweep %d", desc.Experiment, index, desc.SweepIndex)
		}
	}
}

// ChurnRunner returns the default churn job executor: one shared
// simulator pool across trials, each trial materialized from the wire
// scenario exactly as a local churn.Run would. simWorkers is currently
// unused (a churn trial is a single simulation) but kept for symmetry
// with RegistryRunner.
func ChurnRunner(simWorkers int) ChurnJobRunner {
	_ = simWorkers
	runner := churn.NewRunner()
	return func(ctx context.Context, desc ChurnDesc, job Job, obs churn.WindowObserver) (*churn.TrialResult, error) {
		if desc.Protocol != ProtocolVersion {
			return nil, fmt.Errorf("dist: coordinator speaks %q, this worker %q", desc.Protocol, ProtocolVersion)
		}
		tr, err := runner.RunTrial(ctx, desc.Scenario, job.Trial, obs)
		if err != nil {
			return nil, err
		}
		return &tr, nil
	}
}
