package dist

import (
	"fmt"
	"time"

	"bgpsim/internal/churn"
	"bgpsim/internal/experiment"
)

// jobState is the lifecycle of one job in the lease table.
type jobState int

const (
	jobPending jobState = iota // never leased, or lease expired and not yet reassigned
	jobLeased                  // leased to a worker, lease unexpired (or expired but not reclaimed)
	jobDone                    // results recorded
)

// jobPayload is one completed job's recorded result: exactly one of the
// fields is set — Results (one entry) for sweep trial jobs, Trial for
// churn trial jobs. One payload type keeps the lease table, checkpoint,
// and duplicate-verification machinery shared across both run kinds.
type jobPayload struct {
	results []experiment.Result
	trial   *churn.TrialResult
}

// equal compares payloads field-for-field — the duplicate-completion
// determinism check.
func (p jobPayload) equal(q jobPayload) bool {
	if !resultsEqual(p.results, q.results) {
		return false
	}
	if (p.trial == nil) != (q.trial == nil) {
		return false
	}
	if p.trial == nil {
		return true
	}
	a, b := *p.trial, *q.trial
	if a.Trial != b.Trial || a.Start != b.Start || len(a.Windows) != len(b.Windows) {
		return false
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			return false
		}
	}
	return true
}

// jobEntry is one job's lease and result record.
type jobEntry struct {
	state    jobState
	lease    int64  // current lease token (0 = never leased)
	worker   string // holder of the current lease
	expires  time.Time
	attempts int // leases handed out for this job
	payload  jobPayload
}

// completion classifies the outcome of leaseTable.complete.
type completion int

const (
	// completedNew recorded the job's results for the first time.
	completedNew completion = iota
	// completedDuplicate found the job already done with identical
	// results; nothing was recorded.
	completedDuplicate
)

// leaseTable tracks the lease lifecycle of one run's trial jobs:
//
//	pending --acquire--> leased --complete--> done
//	   ^                   |
//	   +----lease expiry---+   (reassignment: acquire hands the job
//	                            to another worker, new lease token)
//
// Expiry is lazy: an expired lease is noticed when another worker asks
// for work (acquire) or when the original worker finally reports
// (complete — still accepted, results are deterministic). The table is
// NOT safe for concurrent use; the coordinator serializes access under
// its own mutex, which is also what makes fake-clock unit tests trivial.
type leaseTable struct {
	ttl       time.Duration
	now       func() time.Time
	jobs      []jobEntry
	done      int
	nextLease int64
}

// newLeaseTable builds a table of n pending jobs whose leases last ttl
// on the clock now.
func newLeaseTable(n int, ttl time.Duration, now func() time.Time) *leaseTable {
	return &leaseTable{ttl: ttl, now: now, jobs: make([]jobEntry, n)}
}

// acquire leases the lowest-numbered available job to worker: a pending
// job first, else a leased job whose lease has expired (reassignment).
// It returns ok=false when every job is either done or validly leased.
func (t *leaseTable) acquire(worker string) (jobID int, lease int64, ok bool) {
	now := t.now()
	reassign := -1
	for i := range t.jobs {
		j := &t.jobs[i]
		switch j.state {
		case jobPending:
			return t.grant(i, worker, now), t.jobs[i].lease, true
		case jobLeased:
			if reassign < 0 && now.After(j.expires) {
				reassign = i
			}
		}
	}
	if reassign >= 0 {
		return t.grant(reassign, worker, now), t.jobs[reassign].lease, true
	}
	return 0, 0, false
}

// grant records a new lease on job i and returns i.
func (t *leaseTable) grant(i int, worker string, now time.Time) int {
	t.nextLease++
	j := &t.jobs[i]
	j.state = jobLeased
	j.lease = t.nextLease
	j.worker = worker
	j.expires = now.Add(t.ttl)
	j.attempts++
	return i
}

// complete records a payload for jobID. Completions are idempotent: a
// duplicate submission must carry a payload identical to the recorded
// one (completedDuplicate); a differing payload is a determinism
// violation and an error. A completion under a superseded lease (the
// job was reassigned after this worker's lease expired) is still
// accepted — the results are deterministic, so first-to-finish wins and
// the other worker's submission lands on the duplicate path.
func (t *leaseTable) complete(jobID int, lease int64, payload jobPayload) (completion, error) {
	if jobID < 0 || jobID >= len(t.jobs) {
		return 0, fmt.Errorf("dist: job %d outside table of %d", jobID, len(t.jobs))
	}
	j := &t.jobs[jobID]
	if j.state == jobDone {
		if !j.payload.equal(payload) {
			return 0, fmt.Errorf("dist: job %d completed twice with different results — worker versions or inputs diverge", jobID)
		}
		return completedDuplicate, nil
	}
	if j.state == jobPending && j.lease == 0 {
		return 0, fmt.Errorf("dist: job %d completed without ever being leased", jobID)
	}
	_ = lease // any lease on a not-yet-done job is acceptable; see doc comment
	j.state = jobDone
	j.payload = payload
	t.done++
	return completedNew, nil
}

// markDone records a checkpoint-restored payload for jobID without a
// lease ever existing (resume path).
func (t *leaseTable) markDone(jobID int, payload jobPayload) {
	j := &t.jobs[jobID]
	if j.state == jobDone {
		return
	}
	j.state = jobDone
	j.payload = payload
	t.done++
}

// remaining counts jobs not yet done.
func (t *leaseTable) remaining() int { return len(t.jobs) - t.done }

// resultsEqual compares per-trial result slices field-for-field (Result
// is a comparable struct of integers).
func resultsEqual(a, b []experiment.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
