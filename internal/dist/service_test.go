package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"bgpsim/internal/churn"
)

// getJSON drives a GET against a handler and decodes a 200 body.
func getJSON(t *testing.T, h http.Handler, path string, resp any) int {
	t.Helper()
	r := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code == http.StatusOK && resp != nil {
		if err := json.Unmarshal(w.Body.Bytes(), resp); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return w.Code
}

// TestServiceRunsQueuedSubmissions drives the full service loop over
// real HTTP: two clients submit concurrently (one experiment figure,
// one churn program), workers execute both in queue order, and
// /v1/query serves the streamed windows and final artifacts.
func TestServiceRunsQueuedSubmissions(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(coord, nil)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	loopDone := make(chan struct{})
	go func() { svc.Run(ctx); close(loopDone) }()
	wc := startWorker(ctx, srv.URL, "w")

	// Two concurrent clients submit over HTTP.
	submit := func(req SubmitRequest) int {
		t.Helper()
		var resp SubmitResponse
		if code := postJSON(t, svc.Handler(), "/v1/submit", req, &resp); code != http.StatusOK {
			t.Fatalf("submit: HTTP %d", code)
		}
		return resp.ID
	}
	churnSc := testChurnScenario()
	ids := make(chan int, 2)
	go func() { ids <- submit(SubmitRequest{Experiment: "fig3", Options: WireOptions(goldenOptions())}) }()
	go func() { ids <- submit(SubmitRequest{Churn: &ChurnDesc{Scenario: churnSc, Trials: 2}}) }()
	a, b := <-ids, <-ids
	if a == b {
		t.Fatalf("concurrent submissions shared ID %d", a)
	}

	// Both submissions finish; poll the query API.
	deadline := time.Now().Add(2 * time.Minute)
	var infos [2]SubmissionInfo
	for done := 0; done != 2; {
		if time.Now().After(deadline) {
			t.Fatalf("submissions stuck: %+v %+v", svc.Query(0), svc.Query(1))
		}
		done = 0
		for id := 0; id < 2; id++ {
			code := getJSON(t, svc.Handler(), "/v1/query?id="+strconv.Itoa(id), &infos[id])
			if code != http.StatusOK {
				t.Fatalf("query %d: HTTP %d", id, code)
			}
			switch infos[id].State {
			case SubmissionDone:
				done++
			case SubmissionFailed:
				t.Fatalf("submission %d failed: %s", id, infos[id].Error)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The artifacts match single-process runs byte for byte.
	for id := 0; id < 2; id++ {
		var want string
		switch infos[id].Kind {
		case "experiment":
			want = serialFig3(t)
		case "churn":
			local, err := churn.Run(context.Background(), churnSc, 2, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			want = local.Render()
			if len(infos[id].Windows) == 0 {
				t.Error("churn submission streamed no windows to the query API")
			}
			if len(infos[id].PerNodeSent) != churnSc.Topology.N {
				t.Errorf("per-node state has %d entries, want %d", len(infos[id].PerNodeSent), churnSc.Topology.N)
			}
		default:
			t.Fatalf("submission %d has kind %q", id, infos[id].Kind)
		}
		if infos[id].Result != want {
			t.Errorf("submission %d result differs from local run:\n--- service ---\n%s--- local ---\n%s",
				id, infos[id].Result, want)
		}
	}

	// The listing names both; the status page renders.
	var list QueryResponse
	if code := getJSON(t, svc.Handler(), "/v1/query", &list); code != http.StatusOK || len(list.Submissions) != 2 {
		t.Errorf("listing = (%d, %d submissions), want (200, 2)", code, len(list.Submissions))
	}
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	w := httptest.NewRecorder()
	svc.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "bgpsim coordinator") {
		t.Errorf("status page = HTTP %d, body %q", w.Code, w.Body.String()[:min(120, w.Body.Len())])
	}

	coord.Shutdown()
	if err := <-wc; err != nil {
		t.Errorf("worker exit: %v", err)
	}
	cancel()
	<-loopDone
}

func TestServiceRejectsBadSubmissions(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(coord, nil)
	bad := []SubmitRequest{
		{}, // neither experiment nor churn
		{Experiment: "no-such-experiment"},
		{Experiment: "fig3", Churn: &ChurnDesc{}}, // both
		{Churn: &ChurnDesc{Scenario: testChurnScenario()}},                                    // zero trials
		{Churn: &ChurnDesc{Scenario: churn.Scenario{Program: churn.Spec{Kind: "x"}}, Trials: 1}}, // bad program
	}
	for i, req := range bad {
		if code := postJSON(t, svc.Handler(), "/v1/submit", req, nil); code != http.StatusBadRequest {
			t.Errorf("bad submission %d: HTTP %d, want 400", i, code)
		}
	}
	if code := getJSON(t, svc.Handler(), "/v1/query?id=99", nil); code != http.StatusNotFound {
		t.Errorf("query of unknown id: HTTP %d, want 404", code)
	}
}
