package dist

import (
	"context"
	"fmt"
	"html/template"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"

	"bgpsim/internal/churn"
	"bgpsim/internal/core"
)

// Submission states.
const (
	// SubmissionQueued means the submission waits for earlier ones.
	SubmissionQueued = "queued"
	// SubmissionRunning means the submission is the active run.
	SubmissionRunning = "running"
	// SubmissionDone means the submission finished; Result holds the
	// rendered artifact.
	SubmissionDone = "done"
	// SubmissionFailed means the submission errored; Error holds why.
	SubmissionFailed = "failed"
)

// SubmitRequest enqueues one run on the service: exactly one of
// Experiment (with Options) or Churn is set.
type SubmitRequest struct {
	// Experiment is a registry ID ("fig3", ...) to run as a figure.
	Experiment string `json:"experiment,omitempty"`
	// Options scales the experiment (ignored for churn submissions).
	Options Options `json:"options,omitempty"`
	// Churn is a churn program to stream.
	Churn *ChurnDesc `json:"churn,omitempty"`
}

// SubmitResponse acknowledges a submission with its queue ID.
type SubmitResponse struct {
	// ID addresses the submission in /v1/query.
	ID int `json:"id"`
}

// LiveWindow is one streamed churn window in a query response, tagged
// with its emitting trial.
type LiveWindow struct {
	// Trial is the emitting churn trial.
	Trial int `json:"trial"`
	// Window is the closed window's metrics.
	Window churn.WindowResult `json:"window"`
}

// SubmissionInfo is the query view of one submission. For running churn
// submissions, Windows and PerNodeSent grow incrementally as windows
// close on the workers — the live metric feed; both are advisory until
// State reaches done, when Result carries the authoritative assembled
// stream.
type SubmissionInfo struct {
	// ID is the queue ID.
	ID int `json:"id"`
	// Kind is "experiment" or "churn".
	Kind string `json:"kind"`
	// Detail names the work: the experiment ID, or the churn program kind.
	Detail string `json:"detail"`
	// State is one of the Submission* constants.
	State string `json:"state"`
	// Error is the failure cause when State is failed.
	Error string `json:"error,omitempty"`
	// Windows lists churn windows streamed so far (set only when the
	// query names a single submission).
	Windows []LiveWindow `json:"windows,omitempty"`
	// PerNodeSent is the cumulative per-router send count across all
	// streamed windows — the live per-router convergence state.
	PerNodeSent []int `json:"per_node_sent,omitempty"`
	// Result is the rendered artifact once done (figure or churn
	// stream; set only when the query names a single submission).
	Result string `json:"result,omitempty"`
}

// QueryResponse lists submissions (GET /v1/query without an id).
type QueryResponse struct {
	// Submissions is every submission in queue order, without the bulky
	// Windows/Result fields.
	Submissions []SubmissionInfo `json:"submissions"`
}

// submission is the service-side record of one queued run.
type submission struct {
	info    SubmissionInfo
	req     SubmitRequest
	windows []LiveWindow
	perNode []int
	result  string
}

// Service promotes a Coordinator into a long-running server: clients
// submit experiments and churn programs over HTTP, a single drain
// goroutine executes them in queue order (preserving the coordinator's
// one-active-run invariant), and /v1/query exposes live per-router
// convergence state and per-window metrics streamed incrementally as
// churn windows close on the workers. Multiple clients can submit and
// poll concurrently; workers connect exactly as they do for one-shot
// coordinators.
type Service struct {
	coord *Coordinator
	log   *log.Logger

	mu      sync.Mutex
	subs    []*submission
	pending chan int // queue IDs in submission order
	active  int      // ID of the running submission, -1 when idle
}

// NewService wraps coord. The coordinator's OnWindow hook is taken over
// by the service; install it before any run starts.
func NewService(coord *Coordinator, logger *log.Logger) *Service {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Service{
		coord:   coord,
		log:     logger,
		pending: make(chan int, 1024),
		active:  -1,
	}
	coord.OnWindow = s.onWindow
	return s
}

// onWindow folds one streamed churn window into the active submission's
// live view. Called under the coordinator mutex; only does slice
// appends under the service mutex.
func (s *Service) onWindow(rep WindowReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active < 0 || s.active >= len(s.subs) {
		return
	}
	sub := s.subs[s.active]
	sub.windows = append(sub.windows, LiveWindow{Trial: rep.Trial, Window: rep.Window})
	if len(sub.perNode) < len(rep.PerNodeSent) {
		sub.perNode = append(sub.perNode, make([]int, len(rep.PerNodeSent)-len(sub.perNode))...)
	}
	for i, n := range rep.PerNodeSent {
		sub.perNode[i] += n
	}
}

// Submit enqueues req and returns its queue ID. The run starts once the
// drain loop reaches it.
func (s *Service) Submit(req SubmitRequest) (int, error) {
	if (req.Experiment == "") == (req.Churn == nil) {
		return 0, fmt.Errorf("dist: submission must set exactly one of experiment, churn")
	}
	detail := req.Experiment
	kind := "experiment"
	if req.Churn != nil {
		kind = "churn"
		detail = string(req.Churn.Scenario.Program.Kind)
		if err := req.Churn.Scenario.Program.Validate(); err != nil {
			return 0, err
		}
		if req.Churn.Trials <= 0 {
			return 0, fmt.Errorf("dist: churn submission needs at least one trial")
		}
	} else if _, err := core.Lookup(req.Experiment); err != nil {
		return 0, err
	}
	s.mu.Lock()
	id := len(s.subs)
	s.subs = append(s.subs, &submission{
		info: SubmissionInfo{ID: id, Kind: kind, Detail: detail, State: SubmissionQueued},
		req:  req,
	})
	s.mu.Unlock()
	select {
	case s.pending <- id:
	default:
		s.mu.Lock()
		s.subs[id].info.State = SubmissionFailed
		s.subs[id].info.Error = "submission queue full"
		s.mu.Unlock()
		return 0, fmt.Errorf("dist: submission queue full")
	}
	s.log.Printf("dist: service: submission %d queued (%s %s)", id, kind, detail)
	return id, nil
}

// Run drains the submission queue until ctx is canceled, executing
// submissions sequentially in queue order. Call it in its own goroutine
// next to the HTTP server.
func (s *Service) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case id := <-s.pending:
			s.execute(ctx, id)
		}
	}
}

// execute runs one submission to completion.
func (s *Service) execute(ctx context.Context, id int) {
	s.mu.Lock()
	sub := s.subs[id]
	sub.info.State = SubmissionRunning
	s.active = id
	s.mu.Unlock()

	result, err := s.run(ctx, sub.req)

	s.mu.Lock()
	s.active = -1
	if err != nil {
		sub.info.State = SubmissionFailed
		sub.info.Error = err.Error()
	} else {
		sub.info.State = SubmissionDone
		sub.result = result
	}
	s.mu.Unlock()
	s.log.Printf("dist: service: submission %d %s", id, s.Query(id).State)
}

// run executes one submission through the coordinator and renders its
// artifact.
func (s *Service) run(ctx context.Context, req SubmitRequest) (string, error) {
	if req.Churn != nil {
		rr, err := s.coord.RunChurn(ctx, *req.Churn)
		if err != nil {
			return "", err
		}
		return rr.Render(), nil
	}
	exp, err := core.Lookup(req.Experiment)
	if err != nil {
		return "", err
	}
	opts := req.Options.Core()
	opts.Context = ctx
	opts.Sweeper = s.coord.SweeperFor(ctx, exp.ID, opts)
	fig, err := exp.Run(opts)
	if err != nil {
		return "", err
	}
	return fig.Render(), nil
}

// Query snapshots one submission (zero SubmissionInfo if id is unknown).
func (s *Service) Query(id int) SubmissionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.subs) {
		return SubmissionInfo{}
	}
	sub := s.subs[id]
	info := sub.info
	info.Windows = append([]LiveWindow(nil), sub.windows...)
	info.PerNodeSent = append([]int(nil), sub.perNode...)
	info.Result = sub.result
	return info
}

// List snapshots every submission's summary in queue order.
func (s *Service) List() []SubmissionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SubmissionInfo, len(s.subs))
	for i, sub := range s.subs {
		out[i] = sub.info
	}
	return out
}

// Handler returns the service HTTP handler: the coordinator's worker
// protocol plus POST /v1/submit, GET /v1/query, and a minimal HTML
// status page at /.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	worker := s.coord.Handler()
	mux.Handle("/v1/lease", worker)
	mux.Handle("/v1/complete", worker)
	mux.Handle("/v1/window", worker)
	mux.Handle("/v1/status", worker)
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("GET /{$}", s.handleStatusPage)
	return mux
}

// handleSubmit accepts one submission.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decode(w, r, &req) {
		return
	}
	id, err := s.Submit(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reply(w, SubmitResponse{ID: id})
}

// handleQuery serves one submission (?id=N) or the full listing.
func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.Atoi(idStr)
		if err != nil {
			http.Error(w, "dist: bad id: "+err.Error(), http.StatusBadRequest)
			return
		}
		info := s.Query(id)
		if info.Kind == "" {
			http.Error(w, fmt.Sprintf("dist: no submission %d", id), http.StatusNotFound)
			return
		}
		reply(w, info)
		return
	}
	reply(w, QueryResponse{Submissions: s.List()})
}

// statusPage is the minimal human-facing view: coordinator counters and
// the submission queue, plain HTML, no scripts.
var statusPage = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html><head><title>bgpsim coordinator</title></head><body>
<h1>bgpsim coordinator</h1>
<p>protocol {{.Stats.Protocol}} · dispatched {{.Stats.Dispatched}}{{if .Stats.Active}} · active run: {{.Stats.Done}}/{{.Stats.Total}} trial jobs{{if .Stats.Churn}} (churn){{end}}{{end}}</p>
<table border="1" cellpadding="4">
<tr><th>id</th><th>kind</th><th>detail</th><th>state</th><th>error</th></tr>
{{range .Subs}}<tr><td><a href="/v1/query?id={{.ID}}">{{.ID}}</a></td><td>{{.Kind}}</td><td>{{.Detail}}</td><td>{{.State}}</td><td>{{.Error}}</td></tr>
{{end}}</table>
</body></html>
`))

// handleStatusPage renders the HTML status page.
func (s *Service) handleStatusPage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = statusPage.Execute(w, struct {
		Stats StatusResponse
		Subs  []SubmissionInfo
	}{s.coord.Stats(), s.List()})
}
