package dist

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bgpsim/internal/churn"
	"bgpsim/internal/experiment"
	"bgpsim/internal/topology"
)

// testChurnScenario is the small churn program the distributed tests
// stream: a 30-node grid under a short Poisson link-flap program.
func testChurnScenario() churn.Scenario {
	return churn.Scenario{
		Topology: topology.Spec{Kind: topology.KindSkewed7030, N: 30},
		Scheme:   "mrai=0.5",
		Program: churn.Spec{Kind: churn.PoissonLinkFlap, Rate: 0.1, Duration: 40 * time.Second,
			HoldMin: 4 * time.Second, HoldMax: 8 * time.Second},
		Seed: 11,
	}
}

type churnOut struct {
	rr  churn.RunResult
	err error
}

// TestDistributedChurnByteIdenticalToLocal is the PR 9 acceptance pin:
// a churn metric stream produced by a coordinator and two real workers
// over localhost HTTP must render byte-identical to a single-process
// churn.Run of the same scenario, and the coordinator must observe the
// per-window stream while trials are still running.
func TestDistributedChurnByteIdenticalToLocal(t *testing.T) {
	sc := testChurnScenario()
	const trials = 3
	local, err := churn.Run(context.Background(), sc, trials, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := local.Render()

	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var reports []WindowReport
	coord.OnWindow = func(rep WindowReport) {
		mu.Lock()
		reports = append(reports, rep)
		mu.Unlock()
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	out := make(chan churnOut, 1)
	go func() {
		rr, err := coord.RunChurn(ctx, ChurnDesc{Scenario: sc, Trials: trials})
		out <- churnOut{rr, err}
	}()
	w1 := startWorker(ctx, srv.URL, "w1")
	w2 := startWorker(ctx, srv.URL, "w2")

	r := <-out
	if r.err != nil {
		t.Fatal(r.err)
	}
	coord.Shutdown()
	for i, errc := range []chan error{w1, w2} {
		if err := <-errc; err != nil {
			t.Errorf("worker %d exit: %v", i+1, err)
		}
	}
	if got := r.rr.Render(); got != want {
		t.Errorf("distributed churn stream differs from local:\n--- distributed ---\n%s--- local ---\n%s", got, want)
	}

	// The advisory window stream saw every window of every trial (no
	// reassignments happened, so no window streamed twice), each report
	// carrying live per-router state.
	windows := 0
	for _, tr := range r.rr.Trials {
		windows += len(tr.Windows)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) != windows {
		t.Errorf("streamed %d window reports, assembled %d windows", len(reports), windows)
	}
	for _, rep := range reports {
		if rep.Trial < 0 || rep.Trial >= trials {
			t.Errorf("report names trial %d of %d", rep.Trial, trials)
		}
		if len(rep.PerNodeSent) != sc.Topology.N {
			t.Errorf("report carries %d per-node counts, want %d", len(rep.PerNodeSent), sc.Topology.N)
		}
	}
}

// TestDistributedChurnResumesAcrossRestart kills the coordinator after
// one trial completes and restarts it against the same checkpoint: only
// the unfinished trials are redone, and the assembled stream is still
// byte-identical to the local run.
func TestDistributedChurnResumesAcrossRestart(t *testing.T) {
	sc := testChurnScenario()
	const trials = 3
	local, err := churn.Run(context.Background(), sc, trials, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := local.Render()
	path := t.TempDir() + "/checkpoint.json"
	desc := ChurnDesc{Scenario: sc, Trials: trials}

	// First life: a lone worker finishes exactly trial job 0, then the
	// coordinator dies mid-program.
	coordA, err := NewCoordinator(CoordinatorConfig{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	outA := make(chan churnOut, 1)
	go func() {
		rr, err := coordA.RunChurn(ctxA, desc)
		outA <- churnOut{rr, err}
	}()
	hA := coordA.Handler()
	l, ok := tryLease(hA, "w")
	if !ok {
		t.Fatal("no churn job leased")
	}
	if l.Churn == nil || l.Desc != nil {
		t.Fatalf("churn lease carries desc=%v churn=%v, want churn only", l.Desc, l.Churn)
	}
	tr, err := churn.NewRunner().RunTrial(context.Background(), l.Churn.Scenario, l.Job.Trial, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ack CompleteResponse
	code := postJSON(t, hA, "/v1/complete", CompleteRequest{
		Worker: "w", SweepID: l.SweepID, JobID: l.Job.ID, Lease: l.Lease, TrialResult: &tr,
	}, &ack)
	if code != 200 || ack.Status != StatusOK {
		t.Fatalf("churn completion = (%d, %q)", code, ack.Status)
	}
	cancelA()
	if r := <-outA; r.err == nil {
		t.Fatal("interrupted churn run reported success")
	}

	// Second life: same program, same checkpoint. The finished trial is
	// restored, the remaining two are redone by real workers.
	coordB, err := NewCoordinator(CoordinatorConfig{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coordB.Handler())
	defer srv.Close()
	ctx := context.Background()
	outB := make(chan churnOut, 1)
	go func() {
		rr, err := coordB.RunChurn(ctx, desc)
		outB <- churnOut{rr, err}
	}()
	wc := startWorker(ctx, srv.URL, "w")
	r := <-outB
	if r.err != nil {
		t.Fatal(r.err)
	}
	coordB.Shutdown()
	if err := <-wc; err != nil {
		t.Errorf("worker exit: %v", err)
	}
	if got := r.rr.Render(); got != want {
		t.Errorf("resumed churn stream differs from local:\n--- resumed ---\n%s--- local ---\n%s", got, want)
	}
	if st := coordB.Stats(); st.Dispatched != trials-1 {
		t.Errorf("resumed run dispatched %d jobs, want %d", st.Dispatched, trials-1)
	}
}

// TestWorkerDrainFinishesInFlightTrial pins the graceful-drain contract:
// Drain called while a job is executing lets the job finish and submit,
// then the worker exits cleanly without leasing more work.
func TestWorkerDrainFinishesInFlightTrial(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	out := make(chan sweepOut, 1)
	go func() {
		fig, err := coord.RunSweep(ctx, "test", 0, Options{}, testSweepCfg(nil))
		out <- sweepOut{fig, err}
	}()

	w := &Worker{Base: srv.URL, ID: "draining", PollInterval: time.Millisecond}
	w.Runner = func(_ context.Context, _ SweepDesc, job Job) ([]experiment.Result, error) {
		w.Drain() // SIGTERM arrives mid-trial
		return trialResults(job.ID), nil
	}
	if err := w.Work(ctx); err != nil {
		t.Fatalf("drained Work = %v, want nil", err)
	}
	st := coord.Stats()
	if st.Done != 1 {
		t.Errorf("Done = %d after drain, want 1 (the in-flight trial submitted)", st.Done)
	}
	if st.Dispatched != 1 {
		t.Errorf("Dispatched = %d after drain, want 1 (no further leases)", st.Dispatched)
	}

	// The remaining jobs are still completable by another worker.
	h := coord.Handler()
	for i := 0; i < 11; i++ {
		l, ok := tryLease(h, "w2")
		if !ok {
			t.Fatal("remaining job not leased")
		}
		if st := completeJob(t, h, l, trialResults(l.Job.ID)); st != StatusOK {
			t.Fatalf("complete job %d ack = %q", l.Job.ID, st)
		}
	}
	if r := <-out; r.err != nil {
		t.Fatal(r.err)
	}
}
