package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep records requested delays without waiting.
type noSleep struct {
	delays []time.Duration
}

func (s *noSleep) sleep(_ context.Context, d time.Duration) error {
	s.delays = append(s.delays, d)
	return nil
}

// shutdownCoordinator serves a coordinator that immediately tells
// workers to exit.
func shutdownCoordinator(t *testing.T) *httptest.Server {
	t.Helper()
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coord.Shutdown()
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestWorkerRetriesTransientErrorsWithBackoff(t *testing.T) {
	inner := shutdownCoordinator(t)
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			http.Error(w, "temporarily overloaded", http.StatusServiceUnavailable)
			return
		}
		inner.Config.Handler.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	var slept noSleep
	w := &Worker{Base: flaky.URL, ID: "w", Backoff: Backoff{Jitter: -1}, sleep: slept.sleep}
	if err := w.Work(context.Background()); err != nil {
		t.Fatalf("Work = %v, want nil (shutdown after retries)", err)
	}
	// Three 503s before success: sleeps are Delay(0..2) of the default
	// exponential schedule, jitter disabled.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(slept.delays) != len(want) {
		t.Fatalf("slept %v, want %v", slept.delays, want)
	}
	for i := range want {
		if slept.delays[i] != want[i] {
			t.Errorf("retry sleep %d = %v, want %v", i, slept.delays[i], want[i])
		}
	}
}

func TestWorkerPermanentErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such route", http.StatusNotFound)
	}))
	defer srv.Close()

	var slept noSleep
	w := &Worker{Base: srv.URL, ID: "w", sleep: slept.sleep}
	if err := w.Work(context.Background()); err == nil {
		t.Fatal("Work = nil for a 404 coordinator")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("4xx retried: %d requests, want 1", n)
	}
	if len(slept.delays) != 0 {
		t.Errorf("4xx slept %v, want no sleeps", slept.delays)
	}
}

func TestWorkerNeverConnectedIsError(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // connection refused from the first request

	var slept noSleep
	w := &Worker{Base: srv.URL, ID: "w", MaxAttempts: 2, sleep: slept.sleep}
	if err := w.Work(context.Background()); err == nil {
		t.Fatal("Work = nil against a dead coordinator it never reached")
	}
}

func TestWorkerCoordinatorGoneAfterConnectExitsClean(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			reply(w, LeaseResponse{Status: StatusWait})
			return
		}
		http.Error(w, "dying", http.StatusInternalServerError)
	}))
	defer srv.Close()

	var slept noSleep
	w := &Worker{Base: srv.URL, ID: "w", MaxAttempts: 2, sleep: slept.sleep}
	if err := w.Work(context.Background()); err != nil {
		t.Fatalf("Work = %v, want nil (coordinator finished and went away)", err)
	}
}

func TestBaseURL(t *testing.T) {
	if got := BaseURL("host:9090"); got != "http://host:9090" {
		t.Errorf("BaseURL(host:9090) = %q", got)
	}
	if got := BaseURL("https://host:9090"); got != "https://host:9090" {
		t.Errorf("BaseURL(https://...) = %q", got)
	}
}
