// Package bench is the canonical registry of the simulator's end-to-end
// benchmarks. The same entries back two consumers:
//
//   - the `go test -bench` suites (internal/bgp and the repo root import
//     the registry from their _test files, so benchmark names and bodies
//     stay in one place), and
//   - cmd/bgpbench, which runs entries through testing.Benchmark and
//     emits the machine-readable BENCH_*.json perf trajectory.
//
// Entries deliberately use only exported API (bgpsim, internal/bgp,
// internal/topology), so the registry measures what a user of the library
// gets, and a benchmark body cannot quietly depend on unexported state.
package bench

import (
	"testing"
	"time"

	"bgpsim"
	"bgpsim/internal/bgp"
	"bgpsim/internal/des"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// Entry is one named benchmark runnable both under `go test -bench` and
// via testing.Benchmark in cmd/bgpbench.
type Entry struct {
	// Name is the benchmark's identifier, matching the historical
	// Benchmark<Name> function names.
	Name string
	// Fn is the benchmark body.
	Fn func(b *testing.B)
}

// Suite returns the registry in fixed order.
func Suite() []Entry {
	return []Entry{
		{"ConvergeAndFailFIFO", func(b *testing.B) { convergeAndFail(b, nil) }},
		{"ConvergeAndFailBatched", func(b *testing.B) {
			convergeAndFail(b, func(p *bgp.Params) { p.Queue = bgp.QueueBatched })
		}},
		{"ConvergeAndFailDynamic", func(b *testing.B) {
			convergeAndFail(b, func(p *bgp.Params) { p.MRAI = mrai.PaperDynamic() })
		}},
		{"ConvergeAndFailDamped", func(b *testing.B) {
			convergeAndFail(b, func(p *bgp.Params) { p.Damping = bgp.DefaultDamping() })
		}},
		{"ScenarioSmallFailureFIFO", func(b *testing.B) {
			scenario(b, bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(60),
				Failure:  bgpsim.GeographicFailure(0.025),
				Scheme:   bgpsim.ConstantMRAI(500 * time.Millisecond),
			})
		}},
		{"ScenarioLargeFailureFIFO", func(b *testing.B) {
			scenario(b, bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(60),
				Failure:  bgpsim.GeographicFailure(0.20),
				Scheme:   bgpsim.ConstantMRAI(500 * time.Millisecond),
			})
		}},
		{"ScenarioLargeFailureBatched", func(b *testing.B) {
			scenario(b, bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(60),
				Failure:  bgpsim.GeographicFailure(0.20),
				Scheme:   bgpsim.BatchedProcessing(500 * time.Millisecond),
			})
		}},
		{"ScenarioDynamicMRAI", func(b *testing.B) {
			scenario(b, bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(60),
				Failure:  bgpsim.GeographicFailure(0.10),
				Scheme:   bgpsim.DynamicMRAI(),
			})
		}},
		{"ScenarioRealisticIBGP", func(b *testing.B) {
			topo := bgpsim.Realistic(30)
			topo.MaxASSize = 6
			scenario(b, bgpsim.Scenario{
				Topology: topo,
				Failure:  bgpsim.GeographicFailure(0.10),
				Scheme:   bgpsim.DynamicMRAI(),
			})
		}},
	}
}

// Lookup returns the entry with the given name.
func Lookup(name string) (Entry, bool) {
	for _, e := range Suite() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// convergeAndFail is the body behind the ConvergeAndFail* entries: one
// full simulation (initial convergence, 6-node geographic failure,
// re-convergence) per iteration on a fixed 60-node topology.
func convergeAndFail(b *testing.B, mutate func(*bgp.Params)) {
	b.Helper()
	rng := des.NewRNG(1)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(60), rng)
	if err != nil {
		b.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := bgp.DefaultParams()
		p.MRAI = mrai.Constant(500 * time.Millisecond)
		p.Seed = int64(i + 1)
		if mutate != nil {
			mutate(&p)
		}
		sim, err := bgp.New(nw, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.ConvergeAndFail(fail); err != nil {
			b.Fatal(err)
		}
	}
}

// scenario is the body behind the Scenario* entries: one scenario-layer
// run (topology generation included) per iteration, fresh seed each time.
func scenario(b *testing.B, sc bgpsim.Scenario) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(1 + i)
		if _, err := bgpsim.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}
