// Package bench is the canonical registry of the simulator's end-to-end
// benchmarks. The same entries back two consumers:
//
//   - the `go test -bench` suites (internal/bgp and the repo root import
//     the registry from their _test files, so benchmark names and bodies
//     stay in one place), and
//   - cmd/bgpbench, which runs entries through testing.Benchmark and
//     emits the machine-readable BENCH_*.json perf trajectory.
//
// Entries deliberately use only exported API (bgpsim, internal/bgp,
// internal/topology, internal/experiment, internal/des, internal/dist),
// so the registry measures what a user of the library gets, and a
// benchmark body cannot quietly depend on unexported state.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"bgpsim"
	"bgpsim/internal/bgp"
	"bgpsim/internal/churn"
	"bgpsim/internal/des"
	"bgpsim/internal/dist"
	"bgpsim/internal/experiment"
	"bgpsim/internal/mrai"
	"bgpsim/internal/snapshot"
	"bgpsim/internal/topology"
)

// Entry is one named benchmark runnable both under `go test -bench` and
// via testing.Benchmark in cmd/bgpbench.
type Entry struct {
	// Name is the benchmark's identifier, matching the historical
	// Benchmark<Name> function names.
	Name string
	// Fn is the benchmark body.
	Fn func(b *testing.B)
}

// Suite returns the registry in fixed order.
func Suite() []Entry {
	return []Entry{
		{"ConvergeAndFailFIFO", func(b *testing.B) { convergeAndFail(b, nil) }},
		{"ConvergeAndFailBatched", func(b *testing.B) {
			convergeAndFail(b, func(p *bgp.Params) { p.Queue = bgp.QueueBatched })
		}},
		{"ConvergeAndFailDynamic", func(b *testing.B) {
			convergeAndFail(b, func(p *bgp.Params) { p.MRAI = mrai.PaperDynamic() })
		}},
		{"ConvergeAndFailDamped", func(b *testing.B) {
			convergeAndFail(b, func(p *bgp.Params) { p.Damping = bgp.DefaultDamping() })
		}},
		{"ScenarioSmallFailureFIFO", func(b *testing.B) {
			scenario(b, bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(60),
				Failure:  bgpsim.GeographicFailure(0.025),
				Scheme:   bgpsim.ConstantMRAI(500 * time.Millisecond),
			})
		}},
		{"ScenarioLargeFailureFIFO", func(b *testing.B) {
			scenario(b, bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(60),
				Failure:  bgpsim.GeographicFailure(0.20),
				Scheme:   bgpsim.ConstantMRAI(500 * time.Millisecond),
			})
		}},
		{"ScenarioLargeFailureBatched", func(b *testing.B) {
			scenario(b, bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(60),
				Failure:  bgpsim.GeographicFailure(0.20),
				Scheme:   bgpsim.BatchedProcessing(500 * time.Millisecond),
			})
		}},
		{"ScenarioDynamicMRAI", func(b *testing.B) {
			scenario(b, bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(60),
				Failure:  bgpsim.GeographicFailure(0.10),
				Scheme:   bgpsim.DynamicMRAI(),
			})
		}},
		{"ScenarioRealisticIBGP", func(b *testing.B) {
			topo := bgpsim.Realistic(30)
			topo.MaxASSize = 6
			// Cycle a small seed set: the realistic generator (AS sizing +
			// IBGP meshing) dominated this entry when every iteration grew a
			// fresh topology, so the measurement tracked the generator, not
			// the protocol. With 8 worlds served by the topology memo the
			// steady state measures the simulation itself.
			scenarioSeedCycle(b, bgpsim.Scenario{
				Topology: topo,
				Failure:  bgpsim.GeographicFailure(0.10),
				Scheme:   bgpsim.DynamicMRAI(),
			}, 8)
		}},
		{"ConvergeLargeScale", func(b *testing.B) {
			// The PR-5 scale target: 500 ASes through the incremental
			// decision process. Seed-cycled so the topology memo serves the
			// worlds and the entry measures the simulation, not generation.
			scenarioSeedCyclePhased(b, bgpsim.LargeScale500(), 4)
		}},
		{"ConvergeLargeScaleSharded", convergeLargeScaleSharded},
		{"ConvergeLargeScaleWarm", convergeLargeScaleWarm},
		{"StormOnly", stormOnly},
		{"SnapshotConverge500", snapshotConverge500},
		{"ConvergeMultiPrefix", convergeMultiPrefix},
		{"ConvergeAndFailFIFOReset", convergeAndFailReset},
		{"TopologyCacheHit", topologyCacheHit},
		{"TopologyCacheMiss", topologyCacheMiss},
		{"DESHeapPushPop", desHeapPushPop},
		{"DESCalendarPushPop", desCalendarPushPop},
		{"DESHeapMRAIHorizon", desHeapMRAIHorizon},
		{"DESCalendarMRAIHorizon", desCalendarMRAIHorizon},
		{"DistDispatch", distDispatch},
		{"ChurnStep", churnStep},
	}
}

// Lookup returns the entry with the given name.
func Lookup(name string) (Entry, bool) {
	for _, e := range Suite() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// convergeAndFail is the body behind the ConvergeAndFail* entries: one
// full simulation (initial convergence, 6-node geographic failure,
// re-convergence) per iteration on a fixed 60-node topology.
func convergeAndFail(b *testing.B, mutate func(*bgp.Params)) {
	b.Helper()
	rng := des.NewRNG(1)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(60), rng)
	if err != nil {
		b.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := bgp.DefaultParams()
		p.MRAI = mrai.Constant(500 * time.Millisecond)
		p.Seed = int64(i + 1)
		if mutate != nil {
			mutate(&p)
		}
		sim, err := bgp.New(nw, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.ConvergeAndFail(fail); err != nil {
			b.Fatal(err)
		}
	}
}

// WarmStart flips every scenario-layer entry to snapshot-seeded trials
// (cmd/bgpbench -warmstart sets it), the same override model as
// ShardCount and MultiPrefixCount: the entry list stays fixed while the
// execution mode becomes a command-line dimension. Results are
// byte-identical either way; only wall clock moves.
var WarmStart = false

// scenario is the body behind the Scenario* entries: one scenario-layer
// run (topology generation included) per iteration, fresh seed each time.
func scenario(b *testing.B, sc bgpsim.Scenario) {
	b.Helper()
	b.ReportAllocs()
	sc.WarmStart = sc.WarmStart || WarmStart
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(1 + i)
		if _, err := bgpsim.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// scenarioSeedCycle runs the scenario cycling through `worlds` fixed
// seeds, so from the second lap onward every topology is a memo hit and
// the iteration cost is simulation, not generation.
func scenarioSeedCycle(b *testing.B, sc bgpsim.Scenario, worlds int) {
	b.Helper()
	b.ReportAllocs()
	sc.WarmStart = sc.WarmStart || WarmStart
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(1 + i%worlds)
		if _, err := bgpsim.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// scenarioSeedCyclePhased is scenarioSeedCycle plus the phase split: the
// simulator's setup/storm wall-clock counters (bgp.TakePhaseNs) are
// drained around the timed loop and reported as setup-ns/op and
// storm-ns/op, so the aggregate ns/op decomposes into the
// initial-convergence phase and the post-failure exploration storm.
// cmd/bgpbench carries both through to the JSON trajectory.
func scenarioSeedCyclePhased(b *testing.B, sc bgpsim.Scenario, worlds int) {
	b.Helper()
	b.ReportAllocs()
	sc.WarmStart = sc.WarmStart || WarmStart
	bgp.TakePhaseNs() // drop residue from earlier entries or warm-up laps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(1 + i%worlds)
		if _, err := bgpsim.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	setup, storm := bgp.TakePhaseNs()
	b.ReportMetric(float64(setup)/float64(b.N), "setup-ns/op")
	b.ReportMetric(float64(storm)/float64(b.N), "storm-ns/op")
}

// ShardCount is the shard dimension of the ConvergeLargeScaleSharded
// entry (cmd/bgpbench -shards overrides it). The entry runs in
// sequenced mode, so its results are byte-identical to
// ConvergeLargeScale; what it measures is the overhead the sharded
// driver adds per event — partitioning, barrier accounting, and
// cross-shard buffering — which is the cost floor under the concurrent
// mode's speedup.
var ShardCount = 4

// convergeLargeScaleSharded is the sharded twin of ConvergeLargeScale:
// the same 500-AS scenario through ShardCount sequenced shards.
func convergeLargeScaleSharded(b *testing.B) {
	sc := bgpsim.LargeScale500()
	sc.Shards = ShardCount
	scenarioSeedCycle(b, sc, 4)
}

// convergeLargeScaleWarm is the warm-started twin of ConvergeLargeScale:
// identical 500-AS scenario, but each trial installs the snapshot
// backend's fixpoint and starts at failure injection. The gap between
// this entry's ns/op and ConvergeLargeScale's is the initial-convergence
// phase the snapshot backend eliminates — ~8x cheaper as a phase, but a
// ~20-40% trial-level saving at this failure size, because the
// byte-identity-pinned post-failure storm dominates the trial (see
// EXPERIMENTS.md "Snapshot warm start"). The first iteration per world
// pays the snapshot computation; later laps hit bgp's snapshot cache,
// which is the steady state sweeps see.
func convergeLargeScaleWarm(b *testing.B) {
	sc := bgpsim.LargeScale500()
	sc.WarmStart = true
	scenarioSeedCyclePhased(b, sc, 4)
}

// stormOnly isolates the post-failure exploration storm: the 500-AS
// world of ConvergeLargeScaleWarm with setup — snapshot install, failure
// scheduling — performed under StopTimer, so ns/op is purely the run
// from failure injection to quiescence. This is the storm fast lane's
// headline metric: the fused-dispatch/blocked-skip/coalesced-MRAI/
// second-best optimizations only touch this window, and here their
// effect is not diluted by setup cost (compare under -storm-baseline
// for the before/after; see EXPERIMENTS.md "Storm fast lane").
func stormOnly(b *testing.B) {
	net, err := experiment.BuildTopologyCached(bgpsim.LargeScale500().Topology, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := bgp.DefaultParams()
	p.Queue = bgp.QueueBatched
	p.MRAI = mrai.PaperDynamic()
	p.WarmStart = true
	p.Seed = 1
	sim, err := bgp.New(net, p)
	if err != nil {
		b.Fatal(err)
	}
	// The paper's 10% geographic failure on this world, resolved once —
	// the failure set is a function of the topology, not the trial seed.
	fail := topology.NearestNodes(net, topology.GridCenter(net), net.NumNodes()/10, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p.Seed = int64(i + 1)
		if err := sim.Reset(p); err != nil {
			b.Fatal(err)
		}
		if err := sim.ConvergeInitial(); err != nil {
			b.Fatal(err)
		}
		sim.ScheduleFailure(sim.Now()+bgp.SettleMargin, fail)
		b.StartTimer()
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// snapshotConverge500 measures the snapshot backend alone: one full
// relaxation to the converged fixpoint of the 500-AS Internet-like world
// per iteration, no DES involved. Its ns/op is the fixed cost a
// warm-started trial pays on a snapshot-cache miss; compare against
// ConvergeLargeScale to see the relaxation-vs-event-exploration gap.
func snapshotConverge500(b *testing.B) {
	net, err := experiment.BuildTopologyCached(bgpsim.LargeScale500().Topology, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Compute(net, snapshot.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// MultiPrefixCount is the prefix dimension of the ConvergeMultiPrefix
// entry (cmd/bgpbench -prefixes overrides it). The default keeps the
// entry at benchmark-friendly wall clock while the destination table —
// 60 ASes × 50 prefixes = 3000 dense dests — is large enough that the
// entry's bytes/op tracks the compact route encoding: interned path
// refs shared across all 50 prefixes of an origin, and per-peer columns
// materialized only for peers that advertise. The full-scale twin
// (bgpsim.LargeScaleMultiPrefix, 500 ASes × 1000 prefixes) runs behind
// the BGPSIM_LARGE test gate, not here.
var MultiPrefixCount = 50

// convergeMultiPrefix is the PR-6 table-scale entry: the same
// converge-fail-reconverge shape as the Scenario entries with every AS
// originating MultiPrefixCount prefixes.
func convergeMultiPrefix(b *testing.B) {
	scenarioSeedCycle(b, bgpsim.Scenario{
		Topology: bgpsim.MultiPrefix(bgpsim.Skewed7030(60), MultiPrefixCount),
		Failure:  bgpsim.GeographicFailure(0.10),
		Scheme:   bgpsim.BatchedDynamic(),
	}, 4)
}

// convergeAndFailReset is the pooled twin of ConvergeAndFailFIFO: one
// simulator is built once and Reset between iterations, measuring the
// per-trial setup cost the dense-state reuse path actually pays inside
// sweeps (the FIFO entry pays full construction every iteration).
func convergeAndFailReset(b *testing.B) {
	rng := des.NewRNG(1)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(60), rng)
	if err != nil {
		b.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	p := bgp.DefaultParams()
	p.MRAI = mrai.Constant(500 * time.Millisecond)
	p.Seed = 1
	sim, err := bgp.New(nw, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		if err := sim.Reset(p); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.ConvergeAndFail(fail); err != nil {
			b.Fatal(err)
		}
	}
}

// topologyCacheHit measures serving a paper-scale topology from the
// process-wide memo.
func topologyCacheHit(b *testing.B) {
	spec := topology.Spec{Kind: topology.KindSkewed7030, N: 120}
	if _, err := experiment.BuildTopologyCached(spec, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BuildTopologyCached(spec, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// topologyCacheMiss measures the full build cost behind a memo miss: a
// fresh seed every iteration, so no iteration is served from cache.
func topologyCacheMiss(b *testing.B) {
	spec := topology.Spec{Kind: topology.KindSkewed7030, N: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BuildTopologyCached(spec, int64(1_000_000+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// distDispatch measures the distributed coordinator's per-job dispatch
// overhead in isolation: each iteration is one lease + one no-op-cell
// completion round trip through the protocol handler, invoked directly
// (no sockets), so the number tracks protocol encoding and lease
// bookkeeping only — jobs/sec the coordinator can serve is 1e9/ns_op.
func distDispatch(b *testing.B) {
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	// One job per iteration: a b.N × 1 grid with a single trial per cell.
	series := make([]string, b.N)
	for i := range series {
		series[i] = "s"
	}
	cfg := experiment.SweepConfig{SeriesNames: series, Xs: []float64{1}, Trials: 1}
	done := make(chan error, 1)
	go func() {
		_, err := coord.RunSweep(context.Background(), "bench", 0, dist.Options{}, cfg)
		done <- err
	}()
	for !coord.Stats().Active {
		runtime.Gosched()
	}
	h := coord.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var lease dist.LeaseResponse
		if err := protocolRoundTrip(h, "/v1/lease", dist.LeaseRequest{Worker: "bench"}, &lease); err != nil {
			b.Fatal(err)
		}
		if lease.Status != dist.StatusJob {
			b.Fatalf("lease %d: status %q", i, lease.Status)
		}
		var ack dist.CompleteResponse
		req := dist.CompleteRequest{
			Worker: "bench", SweepID: lease.SweepID, JobID: lease.Job.ID,
			Lease: lease.Lease, Results: []experiment.Result{{}},
		}
		if err := protocolRoundTrip(h, "/v1/complete", req, &ack); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// churnStep measures the always-on churn path: one churn trial per
// iteration — initial convergence (pooled simulator, memoized topology),
// then a fixed flap-cycle program streamed through the absolute-time
// control path with a measurement window normalized per event. The
// windows/op metric makes the per-window cost explicit: ns_op divided by
// windows/op is what one churn perturbation costs end to end, the
// steady-state unit of work a service-mode coordinator dispatches.
func churnStep(b *testing.B) {
	sc := churn.Scenario{
		Topology: bgpsim.Skewed7030(60),
		Scheme:   "mrai=0.5",
		Program: churn.Spec{
			Kind:    churn.FlapCycle,
			Cycles:  3,
			Period:  20 * time.Second,
			HoldMin: 2 * time.Second,
			HoldMax: 5 * time.Second,
		},
		Seed: 1,
	}
	runner := churn.NewRunner()
	windows := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := runner.RunTrial(context.Background(), sc, i, nil)
		if err != nil {
			b.Fatal(err)
		}
		windows += len(tr.Windows)
	}
	b.StopTimer()
	b.ReportMetric(float64(windows)/float64(b.N), "windows/op")
}

// protocolRoundTrip drives one coordinator exchange through the recorder.
func protocolRoundTrip(h http.Handler, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", path, rec.Code, rec.Body.String())
	}
	return json.Unmarshal(rec.Body.Bytes(), resp)
}

// desHeapPushPop measures the plain 4-ary heap event queue at the
// occupancy a 500-AS simulation sustains (~4096 outstanding events):
// one iteration schedules and drains the full queue through a
// heap-only engine. Baseline for DESCalendarPushPop.
func desHeapPushPop(b *testing.B) {
	desQueueBench(b, des.NewHeapOnlyEngine, desUniformDelays())
}

// desCalendarPushPop is the same workload through the default engine,
// whose calendar queue buckets short-horizon events.
func desCalendarPushPop(b *testing.B) {
	desQueueBench(b, des.NewEngine, desUniformDelays())
}

// desCalendarMRAIHorizon compares the queues on the distribution BGP
// runs actually produce: MRAI timer delays clustered in 0.5–2.25s,
// which land within the calendar ring's horizon.
func desCalendarMRAIHorizon(b *testing.B) {
	desQueueBench(b, des.NewEngine, desMRAIDelays())
}

func desHeapMRAIHorizon(b *testing.B) {
	desQueueBench(b, des.NewHeapOnlyEngine, desMRAIDelays())
}

// desUniformDelays spreads 4096 events over 1ms — heavy same-bucket
// collisions for the calendar ring.
func desUniformDelays() []des.Time {
	const events = 4096
	rng := des.NewRNG(7)
	delays := make([]des.Time, events)
	for i := range delays {
		delays[i] = des.Time(rng.Intn(1_000_000))
	}
	return delays
}

// desMRAIDelays mimics MRAI timer re-arms: 4096 events uniform in
// 0.5–2.25s, the paper's dynamic-ladder range.
func desMRAIDelays() []des.Time {
	const events = 4096
	rng := des.NewRNG(11)
	delays := make([]des.Time, events)
	for i := range delays {
		delays[i] = des.Time(500_000_000 + rng.Intn(1_750_000_000))
	}
	return delays
}

func desQueueBench(b *testing.B, newEngine func() *des.Engine, delays []des.Time) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := newEngine()
		for _, d := range delays {
			eng.Schedule(d, func() {})
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
